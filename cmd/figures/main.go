// Command figures regenerates the paper's evaluation figures by running
// the full simulation sweeps:
//
//	Figure 2 - address-compression coverage per application
//	Figure 5 - message-class breakdown on the interconnect
//	Figure 6 - normalized execution time (top) and link ED^2P (bottom)
//	Figure 7 - normalized full-CMP ED^2P
//
// Usage:
//
//	figures                 # everything at reporting scale (minutes)
//	figures -figure 6       # one figure
//	figures -quick          # smoke-test scale (seconds)
//	figures -csv            # CSV output
//	figures -refs 24000 -warmup 12000   # custom scale
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"tilesim/internal/figures"
	"tilesim/internal/stats"
)

func main() {
	var (
		figure   = flag.Int("figure", 0, "figure number (2, 5, 6 or 7); 0 runs all")
		quick    = flag.Bool("quick", false, "smoke-test scale")
		csv      = flag.Bool("csv", false, "emit CSV")
		refs     = flag.Int("refs", 0, "override references per core")
		warmup   = flag.Int("warmup", 0, "override warmup references per core")
		seed     = flag.Int64("seed", 1, "workload seed")
		ablation = flag.Bool("ablation", false, "run the ablation studies instead of the paper figures")
	)
	flag.Parse()

	scale := figures.Default()
	if *quick {
		scale = figures.Quick()
	}
	if *refs > 0 {
		scale.RefsPerCore = *refs
	}
	if *warmup > 0 {
		scale.WarmupRefs = *warmup
	}
	scale.Seed = *seed

	emit := func(title string, t *stats.Table) {
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Printf("%s\n\n%s\n", title, t.String())
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
	want := func(n int) bool { return *figure == 0 || *figure == n }

	start := time.Now()
	if *ablation {
		_, t, err := figures.AblationWiring(scale, []string{"MP3D", "Unstructured", "FFT", "Water-nsq"})
		if err != nil {
			fail(err)
		}
		emit("Ablation A: link layouts (paper VL+B vs Cheng-style L+PW+ReplyPartitioning vs combined)", t)
		_, t, err = figures.AblationDBRCSize(scale, "FFT")
		if err != nil {
			fail(err)
		}
		emit("Ablation B: DBRC size sweep on FFT (incl. untabulated 8/32-entry points)", t)
		_, t, err = figures.AblationSensitivity(scale, "MP3D")
		if err != nil {
			fail(err)
		}
		emit("Ablation C: sensitivity of the MP3D win to router depth and wire speed", t)
		if !*csv {
			fmt.Printf("(ablations completed in %.0fs)\n", time.Since(start).Seconds())
		}
		return
	}
	if want(2) {
		_, t, err := figures.Figure2(scale)
		if err != nil {
			fail(err)
		}
		emit("Figure 2: address compression coverage (fraction of compressible messages compressed)", t)
	}
	if want(5) {
		_, t, err := figures.Figure5(scale)
		if err != nil {
			fail(err)
		}
		emit("Figure 5: breakdown of messages on the interconnect (baseline)", t)
	}
	if want(6) || want(7) {
		results, err := figures.Figure67(scale)
		if err != nil {
			fail(err)
		}
		if want(6) {
			emit("Figure 6 (top): normalized execution time", figures.Figure6TopTable(results))
			emit("Figure 6 (bottom): normalized link ED^2P", figures.Figure6BottomTable(results))
		}
		if want(7) {
			emit("Figure 7: normalized full-CMP ED^2P (interconnect share 36%)", figures.Figure7Table(results))
		}
	}
	if !*csv {
		fmt.Printf("(sweep completed in %.0fs at refs=%d warmup=%d seed=%d)\n",
			time.Since(start).Seconds(), scale.RefsPerCore, scale.WarmupRefs, scale.Seed)
	}
}

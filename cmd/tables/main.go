// Command tables regenerates the paper's Tables 1-3:
//
//	Table 1 - area and power of the address-compression hardware
//	Table 2 - engineered wire catalog (B-, L-, PW-Wires)
//	Table 3 - VL-Wire catalog at 3/4/5-byte channel widths
//
// The tables are analytic — wire physics and SRAM cost models, no
// simulation — so unlike cmd/figures this command finishes instantly
// and takes no -jobs/-cache flags.
//
// Usage:
//
//	tables            # all tables
//	tables -table 2   # one table
//	tables -csv       # CSV instead of aligned text
package main

import (
	"flag"
	"fmt"
	"os"

	"tilesim/internal/figures"
	"tilesim/internal/stats"
)

func main() {
	var (
		table = flag.Int("table", 0, "table number (1-3); 0 prints all")
		csv   = flag.Bool("csv", false, "emit CSV")
	)
	flag.Parse()

	emit := func(n int, title string, t *stats.Table) {
		if *table != 0 && *table != n {
			return
		}
		if *csv {
			fmt.Print(t.CSV())
			return
		}
		fmt.Printf("%s\n\n%s\n", title, t.String())
	}

	if *table < 0 || *table > 3 {
		fmt.Fprintln(os.Stderr, "tables: -table must be 1, 2 or 3")
		os.Exit(1)
	}
	emit(1, "Table 1: per-core cost of the address compression schemes (16-core CMP, 65 nm)", figures.Table1())
	emit(2, "Table 2: engineered wire implementations (from Cheng et al.)", figures.Table2())
	emit(3, "Table 3: VL-Wire implementations (8X plane)", figures.Table3())
}

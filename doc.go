// Package tilesim is a tiled chip-multiprocessor simulator reproducing
// "Address Compression and Heterogeneous Interconnects for
// Energy-Efficient High-Performance in Tiled CMPs" (Flores, Acacio,
// Aragón — ICPP 2008).
//
// The simulator models the paper's 16-core tiled CMP (4x4 mesh,
// private L1s, a shared NUCA L2, directory MESI coherence) — scalable
// to 1024 tiles on pluggable topologies (DESIGN.md §14) — and the
// paper's proposal:
// dynamic address compression of coherence requests and commands (DBRC
// and Stride schemes) combined with a heterogeneous interconnect whose
// links split into a few very-low-latency VL-Wires for short critical
// messages plus baseline wires for everything else.
//
// Module map (each package's modelling decisions live in the named
// DESIGN.md section):
//
//	internal/sim        deterministic event kernel            DESIGN.md §3
//	internal/stats      counters, histograms, tables          DESIGN.md §3
//	internal/wire       wire RC physics, Table 2/3 catalogs   DESIGN.md §5
//	internal/cacti      SRAM cost models (Table 1)            DESIGN.md §5
//	internal/compress   DBRC / Stride / Perfect codecs        DESIGN.md §5
//	internal/noc        message model and classification      DESIGN.md §5
//	internal/mesh       pluggable Topology (mesh, cmesh,      DESIGN.md §5, §14
//	                    torus, slim), wormhole network,
//	                    per-plane links
//	internal/cache      L1/L2 arrays and MSHRs                DESIGN.md §3
//	internal/coherence  directory MESI protocol               DESIGN.md §5
//	internal/cmp        system assembly and run harness       DESIGN.md §3
//	internal/energy     link/router/chip energy, ED^2P        DESIGN.md §5
//	internal/workload   13 SPLASH-2-class synthetic apps      DESIGN.md §5
//	internal/core       the proposal: compress + plane map    DESIGN.md §1
//	internal/obs        metrics registry, tracer, epoch       DESIGN.md §10, §15
//	                    series, run ledger, host stats
//	internal/trace      workload record/replay                DESIGN.md §7
//	internal/sweep      parallel sweep engine + result cache  DESIGN.md §9, §15
//	                    + ledger records
//	internal/figures    paper table/figure regeneration       DESIGN.md §4
//	internal/analysis   tilesimvet static-analysis rules      DESIGN.md §8, §17
//	internal/pooldbg    pooled-object runtime sanitizer       DESIGN.md §17
//	                    (-tags pooldebug)
//	cmd/tilesim         single-run CLI
//	cmd/tables          Tables 1-3 (analytic, no simulation)
//	cmd/figures         Figures 2, 5, 6, 7 + ablations + the
//	                    topology scale study (-scale) via the
//	                    sweep engine
//	cmd/tracegen        trace capture and summary
//	cmd/benchdiff       run-ledger diff: determinism and      DESIGN.md §15
//	                    perf-regression gate
//	cmd/tilesimvet      the static analyzer CLI
//
// The benchmarks in bench_test.go regenerate each table and figure at a
// reduced scale and measure the sweep engine's serial-vs-parallel
// throughput; see EXPERIMENTS.md for full-scale paper-vs-measured
// numbers (with per-section reproduction commands) and DESIGN.md for
// modelling decisions.
package tilesim

// Package tilesim is a tiled chip-multiprocessor simulator reproducing
// "Address Compression and Heterogeneous Interconnects for
// Energy-Efficient High-Performance in Tiled CMPs" (Flores, Acacio,
// Aragón — ICPP 2008).
//
// The simulator models a 16-core tiled CMP (4x4 mesh, private L1s, a
// shared NUCA L2, directory MESI coherence) and the paper's proposal:
// dynamic address compression of coherence requests and commands (DBRC
// and Stride schemes) combined with a heterogeneous interconnect whose
// links split into a few very-low-latency VL-Wires for short critical
// messages plus baseline wires for everything else.
//
// Layout:
//
//	internal/core       the proposal: message management (compress + map)
//	internal/compress   DBRC / Stride / Perfect address codecs
//	internal/wire       wire RC physics and the Table 2/3 catalogs
//	internal/cacti      SRAM cost models (Table 1)
//	internal/mesh       4x4 wormhole mesh with per-plane channels
//	internal/coherence  directory MESI protocol
//	internal/cache      L1/L2 arrays and MSHRs
//	internal/cmp        system assembly and run harness
//	internal/energy     link/router/chip energy and ED^2P metrics
//	internal/workload   13 SPLASH-2-class synthetic applications
//	internal/figures    regeneration of every paper table and figure
//	cmd/tilesim         single-run CLI
//	cmd/tables          Tables 1-3
//	cmd/figures         Figures 2, 5, 6, 7
//
// The benchmarks in bench_test.go regenerate each table and figure at a
// reduced scale; see EXPERIMENTS.md for full-scale paper-vs-measured
// numbers and DESIGN.md for modelling decisions.
package tilesim

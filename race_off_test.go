//go:build !race

package tilesim

const raceEnabled = false
